lib/core/impossibility.mli: Ftss_sync Ftss_util Pid
