lib/core/solve.ml: Ftss_history Ftss_sync Ftss_util List Spec
