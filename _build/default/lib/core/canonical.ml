open Ftss_util
module Protocol = Ftss_sync.Protocol

type ('s, 'd) t = {
  name : string;
  final_round : int;
  s_init : Pid.t -> 's;
  transition : Pid.t -> 's -> 's Protocol.delivery list -> int -> 's;
  decide : 's -> 'd option;
}

let check pi =
  if pi.final_round < 1 then
    invalid_arg (pi.name ^ ": canonical protocol needs final_round >= 1");
  pi

type 's ft_state = { s : 's; c : int; halted : bool }

let to_protocol pi =
  let pi = check pi in
  {
    Protocol.name = pi.name ^ "/ft";
    init = (fun p -> { s = pi.s_init p; c = 1; halted = false });
    broadcast = (fun _ st -> if st.halted then None else Some st.s);
    step =
      (fun p st deliveries ->
        if st.halted then st
        else
          let states =
            List.filter_map
              (fun { Protocol.src; payload } ->
                Option.map (fun s -> { Protocol.src; payload = s }) payload)
              deliveries
          in
          let s = pi.transition p st.s states st.c in
          let c = st.c + 1 in
          { s; c; halted = st.c = pi.final_round })
  }

let ft_decision pi st = if st.halted then pi.decide st.s else None
