open Ftss_util
module Trace = Ftss_sync.Trace

type ('s, 'm) t = {
  name : string;
  holds : ('s, 'm) Trace.t -> faulty:Pidset.t -> bool;
}

let conj name specs =
  { name; holds = (fun trace ~faulty -> List.for_all (fun s -> s.holds trace ~faulty) specs) }

let trivial = { name = "trivial"; holds = (fun _ ~faulty:_ -> true) }

let pointwise name check =
  {
    name;
    holds =
      (fun trace ~faulty ->
        let rec loop round =
          if round > Trace.length trace then true
          else check ~faulty (Trace.record trace ~round) && loop (round + 1)
        in
        loop 1);
  }

(* The round variables of the correct, non-crashed processes in a state
   vector, as a list. *)
let correct_rounds ~round_of ~faulty states =
  let values = ref [] in
  Array.iteri
    (fun p st ->
      if not (Pidset.mem p faulty) then
        match st with Some s -> values := round_of s :: !values | None -> ())
    states;
  !values

let all_equal = function
  | [] -> true
  | x :: rest -> List.for_all (Int.equal x) rest

let round_agreement ~round_of =
  pointwise "round-agreement" (fun ~faulty record ->
      all_equal (correct_rounds ~round_of ~faulty record.Trace.states_before))

(* The rate condition constrains consecutive rounds *within* the history:
   c_p at the start of round r+1 is c_p at the start of round r, plus one.
   The transition out of the final round is not checked — a history ending
   at a destabilizing event may legitimately end with a reconciliation
   jump, and Theorem 3's guarantee only covers rounds inside the
   coterie-stable window. *)
let round_rate ~round_of =
  {
    name = "round-rate";
    holds =
      (fun trace ~faulty ->
        let len = Trace.length trace in
        let pair_ok r =
          let ok = ref true in
          let before = (Trace.record trace ~round:r).Trace.states_before in
          let after = (Trace.record trace ~round:(r + 1)).Trace.states_before in
          Array.iteri
            (fun p b ->
              if not (Pidset.mem p faulty) then
                match (b, after.(p)) with
                | Some b, Some a -> if round_of a <> round_of b + 1 then ok := false
                | None, _ | _, None -> ())
            before;
          !ok
        in
        let rec loop r = r >= len || (pair_ok r && loop (r + 1)) in
        loop 1);
  }

let assumption1 ~round_of =
  conj "assumption-1" [ round_agreement ~round_of; round_rate ~round_of ]

let uniformity ~round_of ~halted =
  pointwise "uniformity" (fun ~faulty record ->
      let correct = correct_rounds ~round_of ~faulty record.Trace.states_before in
      match correct with
      | [] -> true
      | reference :: _ ->
        let ok = ref true in
        Array.iteri
          (fun p st ->
            if Pidset.mem p faulty then
              match st with
              | None -> () (* crashed counts as halted *)
              | Some s -> if not (halted s) && round_of s <> reference then ok := false)
          record.Trace.states_before;
        !ok)
