open Ftss_util
module Protocol = Ftss_sync.Protocol

type state = int
type message = int

let protocol =
  {
    Protocol.name = "round-agreement";
    init = (fun _ -> 1);
    broadcast = (fun _ c -> c);
    step =
      (fun _ _ deliveries ->
        (* R always contains the process's own broadcast (footnote 1), so
           the maximum is over a non-empty set. *)
        let max_seen =
          List.fold_left
            (fun acc { Protocol.payload; _ } -> max acc payload)
            min_int deliveries
        in
        max_seen + 1);
  }

let spec = Spec.assumption1 ~round_of:(fun c -> c)
let stabilization_time = 1

let corrupt_uniform rng ~bound _pid _c = Rng.int rng bound
