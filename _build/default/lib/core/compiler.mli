(** The compiler of §2.4 (Figure 3): superimposing round agreement onto a
    canonical protocol Π to obtain Π⁺, a protocol tolerant of both process
    and systemic failures.

    Π⁺ infinitely repeats Π. Each message of Π is tagged with the sender's
    round variable; each process maintains a [suspects] set of processes
    whose messages are ignored when updating Π's state — a process is
    suspected when an expected message for the receiver's current round
    number did not arrive (either omitted, or carrying a different round
    tag). The round variable is updated exactly as in the Figure 1 round
    agreement protocol, and when the (normalized) round variable wraps to
    1, Π's state and the suspect set are reset so a fresh iteration of Π
    begins.

    Theorem 4: if Π ft-solves Σ, then Π⁺ ftss-solves Σ⁺ (the infinite
    repetition of Σ) with stabilization time [final_round] — plus up to
    another [final_round] when systemic corruption planted correct
    processes in the initial suspect sets (§2.4, last paragraph). *)

open Ftss_util

(** [normalize ~final_round c] maps the unbounded round variable into Π's
    protocol rounds [1 .. final_round]: [((c - 1) mod final_round) + 1].
    (The paper prints [c mod final_round + 1], which maps the good initial
    state c = 1 to protocol round 2, contradicting Figure 2; we use the
    intent-preserving phase — see DESIGN.md.) Total on corrupted
    (negative) values. *)
val normalize : final_round:int -> int -> int

(** [iteration ~final_round c] is the index (0-based) of the Π-iteration
    that a process with round variable [c] is executing. *)
val iteration : final_round:int -> int -> int

type ('s, 'd) state = {
  s : 's;  (** the controlled protocol's state s_p *)
  c : int;  (** the round variable c_p (unbounded) *)
  suspects : Pidset.t;  (** the suspect set *)
  last_decision : 'd option;
      (** output register: decision of the most recently completed
          iteration. Write-only: never read by the protocol, so a
          corrupted value is harmless and is overwritten at the next
          iteration boundary. *)
  completed : int;
      (** output register: iterations completed since this state was
          created (observability only). *)
}

type 's message = { state : 's; round : int }
(** The tagged broadcast ((STATE: p, s), (ROUND: p, c)). *)

(** [compile ~n pi] is Π⁺ for a system of [n] processes. ([n] is needed
    because the suspect-set update quantifies over all processes "to all"
    of which Π⁺ broadcasts.)

    [suspect_filter] (default true) controls whether messages from
    suspected processes are withheld from Π's transition — the mechanism
    §2.4 introduces to insulate Π from out-of-date messages. Setting it to
    false is an ablation: a faulty process whose round variable lags can
    then feed stale state into some correct processes but not others
    (those it omitted to, which distrust it at the Π level), breaking
    agreement forever — see experiment E8. *)
val compile :
  ?suspect_filter:bool ->
  n:int ->
  ('s, 'd) Canonical.t ->
  (('s, 'd) state, 's message) Ftss_sync.Protocol.t

(** Assumption 1 over the compiled round variable: the round agreement
    part of what Π⁺ guarantees. *)
val round_spec : unit -> (('s, 'd) state, 'm) Spec.t

(** Theorem 4's stabilization bound for [pi], including the suspect-reset
    allowance: [2 * final_round]. *)
val stabilization_bound : ('s, 'd) Canonical.t -> int

(** [corrupt rng ~pi ~c_bound ~corrupt_s] builds a systemic-failure
    corruption for compiled states: the round variable becomes uniform in
    [0, c_bound), the suspect set a uniformly random subset of processes,
    and the inner state is rewritten by [corrupt_s]. *)
val corrupt :
  Rng.t ->
  pi:('s, 'd) Canonical.t ->
  n:int ->
  c_bound:int ->
  corrupt_s:(Rng.t -> Pid.t -> 's -> 's) ->
  Pid.t ->
  ('s, 'd) state ->
  ('s, 'd) state
