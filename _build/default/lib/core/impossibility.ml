open Ftss_util
module Protocol = Ftss_sync.Protocol
module Faults = Ftss_sync.Faults
module Trace = Ftss_sync.Trace
module Runner = Ftss_sync.Runner

let view trace p =
  let rec collect round acc =
    if round > Trace.length trace then List.rev acc
    else
      let record = Trace.record trace ~round in
      match record.Trace.states_before.(p) with
      | None -> List.rev acc
      | Some s ->
        let deliveries =
          List.map
            (fun { Protocol.src; payload } -> (src, payload))
            record.Trace.delivered.(p)
        in
        collect (round + 1) ((s, deliveries) :: acc)
  in
  collect 1 []

(* The rate-obeying strawman of Theorem 1's dichotomy: a process that
   honours c := c + 1 unconditionally can never reconcile a corrupted gap. *)
let rate_obeying_protocol : (int, int) Protocol.t =
  {
    Protocol.name = "rate-obeying-counter";
    init = (fun _ -> 1);
    broadcast = (fun _ c -> c);
    step = (fun _ c _ -> c + 1);
  }

module Theorem1 = struct
  type report = {
    isolation : int;
    gap_at_suffix : int;
    suffix_matches_fresh_run : bool;
    rate_violation_round : int option;
    rate_obeying_never_agrees : bool;
  }

  let scenario_faults ~isolation =
    Faults.of_events ~n:2 [ Faults.Isolate { pid = 1; first = 1; last = isolation } ]

  let run ~isolation ~c_p ~c_q ~suffix =
    if c_p = c_q then invalid_arg "Theorem1.run: round variables must differ";
    if isolation < 1 || suffix < 2 then
      invalid_arg "Theorem1.run: need isolation >= 1 and suffix >= 2";
    let corrupt p _ = if p = 0 then c_p else c_q in
    let rounds = isolation + suffix in
    let faults = scenario_faults ~isolation in
    let h = Runner.run ~corrupt ~faults ~rounds Round_agreement.protocol in
    let start_of_suffix p =
      match Trace.state_before h ~round:(isolation + 1) p with
      | Some c -> c
      | None -> assert false (* nobody crashes in this scenario *)
    in
    let gap_at_suffix = abs (start_of_suffix 0 - start_of_suffix 1) in
    (* The fresh execution G: no failures, commencing in the suffix's
       initial state (itself a legal systemic-failure state). *)
    let g =
      Runner.run
        ~corrupt:(fun p _ -> start_of_suffix p)
        ~faults:(Faults.none 2) ~rounds:suffix Round_agreement.protocol
    in
    let h_suffix = Trace.sub h ~first:(isolation + 1) ~last:rounds in
    let suffix_matches_fresh_run =
      List.for_all
        (fun p -> view h_suffix p = view g p)
        (Pid.all 2)
    in
    (* First suffix round in which some process's round variable does not
       advance by exactly one (the reconciliation jump). *)
    let rate_violation_round =
      let rec scan round =
        if round > Trace.length h_suffix then None
        else
          let record = Trace.record h_suffix ~round in
          let violated p =
            match (record.Trace.states_before.(p), record.Trace.states_after.(p)) with
            | Some b, Some a -> a <> b + 1
            | None, _ | _, None -> false
          in
          if List.exists violated (Pid.all 2) then Some round else scan (round + 1)
      in
      scan 1
    in
    let naive =
      Runner.run ~corrupt ~faults ~rounds rate_obeying_protocol
    in
    let rate_obeying_never_agrees =
      let rec scan round =
        if round > rounds then true
        else
          match
            ( Trace.state_before naive ~round 0,
              Trace.state_before naive ~round 1 )
          with
          | Some a, Some b -> a <> b && scan (round + 1)
          | None, _ | _, None -> false
      in
      scan (isolation + 1)
    in
    {
      isolation;
      gap_at_suffix;
      suffix_matches_fresh_run;
      rate_violation_round;
      rate_obeying_never_agrees;
    }

  let confirms_theorem r =
    r.gap_at_suffix > 0 && r.suffix_matches_fresh_run
    && Option.is_some r.rate_violation_round
    && r.rate_obeying_never_agrees
end

module Kp90 = struct
  type report = {
    baseline_ever_decides : bool;
    compiled_decides_repeatedly : bool;
  }

  (* A minimal canonical Π: flood the set of participant pids, decide the
     minimum after [f + 1] rounds. *)
  let toy_pi ~f : (Pidset.t, Pid.t) Canonical.t =
    {
      Canonical.name = "kp90-toy";
      final_round = f + 1;
      s_init = (fun p -> Pidset.singleton p);
      transition =
        (fun _ s deliveries _k ->
          List.fold_left
            (fun acc { Protocol.payload; _ } -> Pidset.union acc payload)
            s deliveries);
      decide = (fun s -> Pidset.min_elt_opt s);
    }

  let run ~n ~f ~rounds =
    let pi = toy_pi ~f in
    (* The terminating baseline, with every process systemically planted
       in the absorbing halt state (and its decision state emptied). *)
    let ft = Canonical.to_protocol pi in
    let corrupt_halted _ (st : Pidset.t Canonical.ft_state) =
      { st with Canonical.halted = true; s = Pidset.empty }
    in
    let baseline_trace =
      Runner.run ~corrupt:corrupt_halted ~faults:(Faults.none n) ~rounds ft
    in
    let decided_at_round r =
      List.exists
        (fun p ->
          match Trace.state_after baseline_trace ~round:r p with
          | Some st -> Canonical.ft_decision pi st <> None
          | None -> false)
        (Pid.all n)
    in
    let baseline_ever_decides =
      List.exists (fun i -> decided_at_round (i + 1)) (List.init rounds Fun.id)
    in
    (* The compiled (infinitely repeating) version from a comparable
       corruption: emptied protocol state and a scrambled round variable.
       There is no halt state to be trapped in. *)
    let compiled = Compiler.compile ~n pi in
    let corrupt_compiled p (st : (Pidset.t, Pid.t) Compiler.state) =
      { st with Compiler.s = Pidset.empty; c = 17 + p }
    in
    let compiled_trace =
      Runner.run ~corrupt:corrupt_compiled ~faults:(Faults.none n) ~rounds compiled
    in
    let completions =
      List.filter
        (fun r ->
          List.exists
            (fun p ->
              match
                ( Trace.state_before compiled_trace ~round:r p,
                  Trace.state_after compiled_trace ~round:r p )
              with
              | Some b, Some a ->
                a.Compiler.completed = b.Compiler.completed + 1
                && a.Compiler.last_decision <> None
              | None, _ | _, None -> false)
            (Pid.all n))
        (List.init rounds (fun i -> i + 1))
    in
    {
      baseline_ever_decides;
      compiled_decides_repeatedly = List.length completions >= 2;
    }

  let confirms_claim r = (not r.baseline_ever_decides) && r.compiled_decides_repeatedly
end

module Theorem2 = struct
  type report = {
    views_identical : bool;
    self_checking_halts_correct_process : bool;
    never_halting_violates_uniformity : bool;
  }

  (* The "self-checking and halting before doing any harm" strawman
     (Assumption 2's technique): run round agreement, but halt after
     [threshold] consecutive rounds of silence from every other process. *)
  type checking_state = { c : int; silent : int; halted : bool }

  let self_checking ~threshold : (checking_state, int) Protocol.t =
    {
      Protocol.name = "self-checking-round-agreement";
      init = (fun _ -> { c = 1; silent = 0; halted = false });
      broadcast = (fun _ st -> st.c);
      step =
        (fun p st deliveries ->
          if st.halted then st
          else
            let heard_other =
              List.exists (fun { Protocol.src; _ } -> not (Pid.equal src p)) deliveries
            in
            let silent = if heard_other then 0 else st.silent + 1 in
            if silent >= threshold then { st with silent; halted = true }
            else
              let max_seen =
                List.fold_left
                  (fun acc { Protocol.payload; _ } -> max acc payload)
                  min_int deliveries
              in
              { c = max_seen + 1; silent; halted = false });
    }

  let run ~silence_threshold ~c_p ~c_q ~rounds =
    if c_p = c_q then invalid_arg "Theorem2.run: round variables must differ";
    if silence_threshold < 1 || rounds <= silence_threshold then
      invalid_arg "Theorem2.run: need rounds > silence_threshold >= 1";
    let corrupt_checking p (st : checking_state) =
      { st with c = (if p = 0 then c_p else c_q) }
    in
    let never_communicate culprit =
      Faults.of_events ~n:2 [ Faults.Isolate { pid = culprit; first = 1; last = rounds } ]
    in
    let protocol = self_checking ~threshold:silence_threshold in
    (* Scenario 1: process 1 is the faulty one. Scenario 2: process 0 is.
       The communication pattern — total silence — is identical. *)
    let run_with culprit =
      Runner.run ~corrupt:corrupt_checking ~faults:(never_communicate culprit)
        ~rounds protocol
    in
    let h1 = run_with 1 in
    let h2 = run_with 0 in
    let views_identical =
      List.for_all (fun p -> view h1 p = view h2 p) (Pid.all 2)
    in
    let halted trace p =
      match Trace.state_after trace ~round:rounds p with
      | Some st -> st.halted
      | None -> true
    in
    (* In h1, process 0 is correct; the self-checking strawman halts it
       anyway (it cannot distinguish h1 from h2). *)
    let self_checking_halts_correct_process = halted h1 0 && halted h2 1 in
    (* The never-halting strawman (plain round agreement) leaves the faulty
       process running and disagreeing: uniformity (Assumption 2) fails. *)
    let corrupt_plain p _ = if p = 0 then c_p else c_q in
    let plain =
      Runner.run ~corrupt:corrupt_plain ~faults:(never_communicate 1) ~rounds
        Round_agreement.protocol
    in
    let uniformity_violated =
      let rec scan round =
        if round > rounds then false
        else
          match
            (Trace.state_before plain ~round 0, Trace.state_before plain ~round 1)
          with
          | Some c0, Some c1 -> c0 <> c1 || scan (round + 1)
          | None, _ | _, None -> scan (round + 1)
      in
      (* every round disagrees, and the faulty process never halts (plain
         round agreement has no halting action at all) *)
      scan 1
    in
    {
      views_identical;
      self_checking_halts_correct_process;
      never_halting_violates_uniformity = uniformity_violated;
    }

  let confirms_theorem r =
    r.views_identical && r.self_checking_halts_correct_process
    && r.never_halting_violates_uniformity
end
