(** Problems as predicates on histories (paper §2.1).

    A problem Σ is a predicate on a history H and a set F of processes
    faulty in H. A spec value packages Σ together with a name for
    reporting. Specs are evaluated on {!Ftss_sync.Trace.t} values — both
    whole histories and the sub-histories that the solving definitions
    (Defs. 2.1, 2.2, 2.4) quantify over. *)

open Ftss_util

type ('s, 'm) t = {
  name : string;
  holds : ('s, 'm) Ftss_sync.Trace.t -> faulty:Pidset.t -> bool;
}

(** [conj name specs] is satisfied when every conjunct is. *)
val conj : string -> ('s, 'm) t list -> ('s, 'm) t

(** [trivial] is satisfied by every history. *)
val trivial : ('s, 'm) t

(** {2 Assumption 1}

    Round-based problems require the correct processes to agree on the
    round number in every round, and to increment it by one at the end of
    each round. [round_of] extracts the process's round variable c_p from
    its state. *)

(** Agreement: all correct processes have equal round variables at the
    start of every round of the history. *)
val round_agreement : round_of:('s -> int) -> ('s, 'm) t

(** Rate: every correct process's round variable increases by exactly one
    between consecutive rounds of the history. The transition out of the
    final round is not constrained: a sub-history ending at a
    destabilizing event may end with a legitimate reconciliation jump
    (Theorem 3 claims agreement only for rounds inside the stable
    window). *)
val round_rate : round_of:('s -> int) -> ('s, 'm) t

(** Both conditions of Assumption 1. *)
val assumption1 : round_of:('s -> int) -> ('s, 'm) t

(** {2 Assumption 2}

    Uniformity (for the class of problems that restrict faulty processes,
    §2.2): every faulty process has either halted or agrees with the
    correct processes on the round number. [halted] recognizes a halted
    state. Theorem 2 shows no protocol ftss-solves a problem with this
    requirement; the spec exists so the theorem can be exercised. *)
val uniformity : round_of:('s -> int) -> halted:('s -> bool) -> ('s, 'm) t

(** {2 Generic helpers} *)

(** [pointwise name check] holds iff [check ~faulty record] holds for every
    round record of the history. *)
val pointwise :
  string ->
  (faulty:Pidset.t -> ('s, 'm) Ftss_sync.Trace.round_record -> bool) ->
  ('s, 'm) t
