(** The round agreement protocol of Figure 1.

    Each process broadcasts its current round number and adopts
    [max(received) + 1] at the end of the round. Theorem 3: this protocol
    ftss-solves round agreement with a stabilization time of one round —
    once the coterie has been stable for one round, and for as long as it
    stays stable, all correct processes agree on a common round number and
    increment it by one per round (Assumption 1).

    The process state is exactly the round variable c_p; a systemic failure
    sets it to an arbitrary integer. *)

open Ftss_util

type state = int
(** The round variable c_p. *)

type message = int
(** The (ROUND: p, c) broadcast; the sender pid is carried by the
    delivery envelope. *)

(** The Figure 1 protocol. [init] is the paper's "good" initial state
    c_p = 1. *)
val protocol : (state, message) Ftss_sync.Protocol.t

(** The problem it solves: Assumption 1 (agreement + rate) over the round
    variable. *)
val spec : (state, message) Spec.t

(** Theorem 3's claimed stabilization time. *)
val stabilization_time : int

(** [corrupt_uniform rng ~bound] draws an independent round variable in
    [0, bound) for every process — the standard systemic-failure
    corruption used in the experiments. *)
val corrupt_uniform : Rng.t -> bound:int -> Pid.t -> state -> state
