(** Executable reproductions of the paper's impossibility theorems.

    Both proofs are "by scenario": they construct executions that are
    indistinguishable to some process yet impose contradictory
    requirements. We run those scenarios on the simulator and check each
    step of the argument mechanically:

    - {b Theorem 1} (no finite stabilization time under Tentative
      Definition 1): two processes start with different (corrupted) round
      variables and are kept from communicating for [isolation] rounds by
      omission failures. The suffix after the isolation is shown to be
      {e literally identical} to a fresh fault-free execution G commencing
      in the suffix's initial state — so any protocol must treat them the
      same. Obeying the rate condition in the two "one of them is faulty"
      scenarios forces the round variables never to meet in G, violating
      agreement; conversely a protocol that reconciles them (the Figure 1
      protocol) must violate the rate condition at the reconciliation
      round. The report records both horns.

    - {b Theorem 2} (uniform protocols cannot ftss-solve anything): two
      processes never communicate. The local view of a process is
      identical whether it is the correct one or the faulty one, so a
      uniform protocol (Assumption 2: faulty processes halt or agree)
      must halt it in both scenarios — and halting a correct process
      violates the rate condition of Assumption 1. The report runs a
      "self-checking" strawman that halts after silence and a
      "never-halt" strawman, and shows each violates one horn. *)

open Ftss_util

module Theorem1 : sig
  type report = {
    isolation : int;  (** rounds of enforced non-communication *)
    gap_at_suffix : int;
        (** |c_p - c_q| when the isolation ends — nonzero, as the proof
            requires *)
    suffix_matches_fresh_run : bool;
        (** the key indistinguishability: H's suffix equals G, the
            fault-free execution started from the suffix's initial state *)
    rate_violation_round : int option;
        (** first suffix round where the Figure 1 protocol violates the
            rate condition (it must, to reconcile) *)
    rate_obeying_never_agrees : bool;
        (** the rate-obeying protocol (c := c + 1) never reaches
            agreement in the suffix *)
  }

  (** [run ~isolation ~c_p ~c_q ~suffix] executes the scenario. [c_p] and
      [c_q] are the corrupted initial round variables (must differ);
      [suffix] is how many fault-free rounds to observe after the
      isolation. Raises [Invalid_argument] if [c_p = c_q] or the interval
      parameters are non-positive. *)
  val run : isolation:int -> c_p:int -> c_q:int -> suffix:int -> report

  (** A report is consistent with Theorem 1 when the indistinguishability
      holds and both horns of the dichotomy are observed. *)
  val confirms_theorem : report -> bool
end

module Theorem2 : sig
  type report = {
    views_identical : bool;
        (** process 0's local view is the same whether it or its peer is
            the faulty one *)
    self_checking_halts_correct_process : bool;
        (** the halting strawman halts a {e correct} process, violating
            rate *)
    never_halting_violates_uniformity : bool;
        (** the non-halting strawman leaves a faulty process neither
            halted nor in agreement, violating Assumption 2 *)
  }

  (** [run ~silence_threshold ~c_p ~c_q ~rounds] executes the
      never-communicating scenario with both strawmen. *)
  val run : silence_threshold:int -> c_p:int -> c_q:int -> rounds:int -> report

  val confirms_theorem : report -> bool
end

(** {2 [KP90]: terminating protocols cannot tolerate systemic failures}

    The paper restricts attention to non-terminating protocols built by
    repeating a terminating sub-protocol, citing [KP90]: a terminating
    protocol's halt state is absorbing, so a systemic failure that
    plants a process in it (with a bogus or missing decision) can never
    be recovered from. This module runs the terminating ft-baseline of a
    canonical protocol from exactly that corruption, and the compiled
    (infinitely repeating) version from an equally corrupted state, and
    reports the contrast. *)
module Kp90 : sig
  type report = {
    baseline_ever_decides : bool;
        (** the corrupted-halted terminating run produces a decision in
            any suffix (it must not) *)
    compiled_decides_repeatedly : bool;
        (** the compiled version, from corrupted state, completes
            iterations with decisions *)
  }

  (** [run ~n ~f ~rounds] uses a minimum-pid-election canonical protocol
      as Π. *)
  val run : n:int -> f:int -> rounds:int -> report

  val confirms_claim : report -> bool
end

(** The local view of a process: for each round it participated in, its
    start-of-round state and the deliveries it received. Two executions
    are indistinguishable to a process iff its views are equal. *)
val view :
  ('s, 'm) Ftss_sync.Trace.t -> Pid.t -> ('s * (Pid.t * 'm) list) list
