open Ftss_util

type 'm delivery = { src : Pid.t; payload : 'm }

type ('s, 'm) t = {
  name : string;
  init : Pid.t -> 's;
  broadcast : Pid.t -> 's -> 'm;
  step : Pid.t -> 's -> 'm delivery list -> 's;
}

let map_state ~wrap ~unwrap p =
  {
    name = p.name;
    init = (fun pid -> wrap pid (p.init pid));
    broadcast = (fun pid t -> p.broadcast pid (unwrap t));
    step = (fun pid t deliveries -> wrap pid (p.step pid (unwrap t) deliveries));
  }
