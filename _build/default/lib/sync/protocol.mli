(** Round-based protocols for the perfectly synchronous model (paper §2.1).

    A computation proceeds in rounds numbered from 1. At the start of each
    round every non-crashed process broadcasts one message derived from its
    state; at the end of the round it applies its transition function to the
    multiset of messages it received during the round. Per the paper's
    footnote 1, every process always receives its own broadcast; omission
    failures only affect messages between distinct processes. *)

open Ftss_util

(** A message as delivered: the payload together with its true sender.
    (Senders are authenticated by the synchronous network; omission faults
    can suppress messages but not forge them.) *)
type 'm delivery = { src : Pid.t; payload : 'm }

type ('s, 'm) t = {
  name : string;
  init : Pid.t -> 's;
      (** The initial state specified by the protocol. A systemic failure
          replaces this with an arbitrary state (see {!Runner.run}'s
          [corrupt] argument). *)
  broadcast : Pid.t -> 's -> 'm;
      (** The message broadcast to all processes at the start of a round. *)
  step : Pid.t -> 's -> 'm delivery list -> 's;
      (** End-of-round transition. The delivery list is ordered by sender
          pid and always contains the process's own broadcast. *)
}

(** [map_state ~wrap ~unwrap p] lifts a protocol to a richer state type;
    used by the compiler to superimpose control state. *)
val map_state :
  wrap:(Pid.t -> 's -> 't) ->
  unwrap:('t -> 's) ->
  ('s, 'm) t ->
  ('t, 'm) t
