lib/sync/faults.mli: Format Ftss_util Pid Pidset Rng
