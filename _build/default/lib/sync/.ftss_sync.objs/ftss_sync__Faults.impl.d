lib/sync/faults.ml: Array Format Ftss_util Hashtbl List Pid Pidset Rng
