lib/sync/runner.ml: Array Faults Ftss_util List Pid Protocol Trace
