lib/sync/runner.mli: Faults Ftss_util Pid Protocol Trace
