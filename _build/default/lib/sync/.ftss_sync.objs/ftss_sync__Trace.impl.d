lib/sync/trace.ml: Array Format Ftss_util List Option Pid Pidset Printf Protocol
