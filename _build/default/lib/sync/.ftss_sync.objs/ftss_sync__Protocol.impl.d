lib/sync/protocol.ml: Ftss_util Pid
