lib/sync/protocol.mli: Ftss_util Pid
