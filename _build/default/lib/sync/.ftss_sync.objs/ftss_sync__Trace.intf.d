lib/sync/trace.mli: Format Ftss_util Pid Pidset Protocol
