open Ftss_util

let run ?corrupt ?(corrupt_at = []) ~faults ~rounds (protocol : ('s, 'm) Protocol.t) =
  if rounds < 1 then invalid_arg "Runner.run: rounds < 1";
  let n = Faults.n faults in
  let initial p =
    let s = protocol.init p in
    match corrupt with None -> s | Some c -> c p s
  in
  let states = Array.init n (fun p -> Some (initial p)) in
  let crashed_at = Array.make n None in
  let omissions = ref [] in
  let records = ref [] in
  for round = 1 to rounds do
    (* Crashes scheduled for this round take effect before the broadcast. *)
    Array.iteri
      (fun p st ->
        match (st, Faults.crash_round faults p) with
        | Some _, Some cr when cr <= round ->
          states.(p) <- None;
          crashed_at.(p) <- Some cr
        | _ -> ())
      (Array.copy states);
    (* Mid-execution systemic failure, if scheduled. *)
    List.iter
      (fun (r, c) ->
        if r = round then
          Array.iteri
            (fun p st ->
              match st with Some s -> states.(p) <- Some (c p s) | None -> ())
            (Array.copy states))
      corrupt_at;
    let states_before = Array.copy states in
    let sent =
      Array.init n (fun p ->
          match states.(p) with
          | None -> None
          | Some s -> Some (protocol.broadcast p s))
    in
    let delivered =
      Array.init n (fun dst ->
          if states.(dst) = None then []
          else
            List.filter_map
              (fun src ->
                match sent.(src) with
                | None -> None
                | Some payload ->
                  if Pid.equal src dst then Some { Protocol.src; payload }
                  else if Faults.drops faults ~round ~src ~dst then begin
                    omissions := (round, src, dst) :: !omissions;
                    None
                  end
                  else Some { Protocol.src; payload })
              (Pid.all n))
    in
    Array.iteri
      (fun p st ->
        match st with
        | None -> ()
        | Some s -> states.(p) <- Some (protocol.step p s delivered.(p)))
      (Array.copy states);
    records :=
      {
        Trace.round;
        states_before;
        sent;
        delivered;
        states_after = Array.copy states;
      }
      :: !records
  done;
  {
    Trace.n;
    protocol_name = protocol.name;
    records = Array.of_list (List.rev !records);
    crashed_at;
    omissions = List.rev !omissions;
    declared_faulty = Faults.faulty faults;
  }
