(* Benchmark harness: regenerates every experiment table (E1-E7, one per
   figure/theorem of the paper — see DESIGN.md's per-experiment index and
   EXPERIMENTS.md for paper-claim vs measured) and runs the bechamel
   microbenchmark suite (M1).

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- E1 E5   # a subset
     dune exec bench/main.exe -- M1      # microbenchmarks only *)

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let wanted name = requested = [] || List.mem name requested in
  List.iter
    (fun (name, experiment) ->
      if wanted name then begin
        experiment ();
        print_newline ()
      end)
    Experiments.all;
  if wanted "M1" then Microbench.run ()
