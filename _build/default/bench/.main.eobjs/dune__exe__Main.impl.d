bench/main.ml: Array Experiments List Microbench Sys
