bench/main.mli:
