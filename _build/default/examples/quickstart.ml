(* Quickstart: make an ordinary fault-tolerant protocol self-stabilizing.

   We take the omission-tolerant flooding consensus Π (a classic
   process-failure-tolerant protocol in the paper's Figure 2 canonical
   form), push it through the Figure 3 compiler to get Π⁺, corrupt every
   process's state to simulate a systemic failure, run it under an
   omission-fault adversary, and verify Theorem 4: within 2·final_round
   rounds of the coterie stabilizing, the system behaves exactly like a
   well-initialized run — repeated consensus with agreeing decisions.

   Run with: dune exec examples/quickstart.exe *)

open Ftss_util
open Ftss_sync
open Ftss_core
open Ftss_protocols

let () =
  let n = 5 and f = 1 in
  let rng = Rng.create 2026 in

  (* 1. An ordinary process-failure-tolerant protocol Π. *)
  let propose p = 50 + p in
  let pi = Omission_consensus.make ~n ~f ~propose in
  Format.printf "Π = %s (final_round = %d)@." pi.Canonical.name pi.Canonical.final_round;

  (* 2. Compile it: Π⁺ tolerates systemic failures too. *)
  let compiled = Compiler.compile ~n pi in
  Format.printf "Π⁺ = %s (stabilization bound = %d rounds)@.@." compiled.Protocol.name
    (Compiler.stabilization_bound pi);

  (* 3. A systemic failure: every process starts from garbage. *)
  let corrupt =
    Compiler.corrupt rng ~pi ~n ~c_bound:1000
      ~corrupt_s:(fun rng p s -> Omission_consensus.corrupt_state rng ~n ~value_bound:49 p s)
  in

  (* 4. Process failures on top: one process keeps omitting messages. *)
  let rounds = 40 in
  let faults = Faults.random_omission rng ~n ~f ~p_drop:0.4 ~rounds in
  Format.printf "adversary: %a@.@." Faults.pp faults;

  (* 5. Run and inspect. *)
  let trace = Runner.run ~corrupt ~faults ~rounds compiled in
  Format.printf "per-iteration decisions of each correct process:@.";
  List.iter
    (fun (round, cs) ->
      let show c =
        Format.asprintf "%a:%s" Pid.pp c.Repeated.pid
          (match c.Repeated.decision with Some v -> string_of_int v | None -> "-")
      in
      Format.printf "  round %2d: %s@." round (String.concat " " (List.map show cs)))
    (Repeated.decisions_by_round trace ~faulty:(Faults.faulty faults));

  (* 6. Check Theorem 4 on this history. *)
  let valid d = d >= 50 && d < 50 + n in
  let spec = Repeated.round_and_sigma ~final_round:pi.Canonical.final_round ~valid () in
  let holds =
    Solve.ftss_solves spec ~stabilization:(Compiler.stabilization_bound pi) trace
  in
  let measured = Solve.measured_stabilization spec trace in
  Format.printf "@.Theorem 4 (ftss-solves Σ⁺): %b@." holds;
  Format.printf "measured stabilization: %d rounds (bound: %d)@." measured
    (Compiler.stabilization_bound pi);
  if not holds then exit 1
