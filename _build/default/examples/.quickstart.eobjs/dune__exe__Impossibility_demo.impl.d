examples/impossibility_demo.ml: Format Ftss_core Impossibility
