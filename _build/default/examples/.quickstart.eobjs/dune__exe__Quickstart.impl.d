examples/quickstart.ml: Canonical Compiler Faults Format Ftss_core Ftss_protocols Ftss_sync Ftss_util List Omission_consensus Pid Protocol Repeated Rng Runner Solve String
