examples/repeated_consensus.ml: Canonical Compiler Faults Format Ftss_core Ftss_history Ftss_protocols Ftss_sync Ftss_util List Omission_consensus Pid Pidset Repeated Rng Runner Solve String Trace
