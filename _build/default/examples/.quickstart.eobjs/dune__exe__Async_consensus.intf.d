examples/async_consensus.mli:
