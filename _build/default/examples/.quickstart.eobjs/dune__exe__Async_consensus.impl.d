examples/async_consensus.ml: Consensus Ewfd Format Ftss_async Ftss_util List Rng Sim
