examples/repeated_consensus.mli:
