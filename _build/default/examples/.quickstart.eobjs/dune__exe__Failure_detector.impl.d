examples/failure_detector.ml: Esfd Ewfd Format Ftss_async Ftss_util List Pid Pidset Rng Sim
