examples/failure_detector.mli:
