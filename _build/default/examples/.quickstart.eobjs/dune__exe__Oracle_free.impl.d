examples/oracle_free.ml: Consensus Detector_stack Format Ftss_async Ftss_util List Rng Sim
