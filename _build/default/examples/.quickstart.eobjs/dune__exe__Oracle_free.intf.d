examples/oracle_free.mli:
