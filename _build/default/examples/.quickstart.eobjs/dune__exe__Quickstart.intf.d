examples/quickstart.mli:
