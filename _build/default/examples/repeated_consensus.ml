(* Repeated consensus surviving a mid-run systemic failure.

   The motivating scenario of the paper: a long-lived replicated service
   (modelled as repeated consensus) hit by a memory-corrupting event while
   process failures keep occurring. We run the compiled protocol, corrupt
   every process at round 25, and watch the coterie analysis and decision
   stream: the corruption knocks the system out for at most the
   stabilization bound, then iterations resume exactly as before.

   Run with: dune exec examples/repeated_consensus.exe *)

open Ftss_util
open Ftss_sync
open Ftss_core
open Ftss_protocols
module Causality = Ftss_history.Causality

let () =
  let n = 4 and f = 1 in
  let rng = Rng.create 7 in
  let propose p = 10 + (p * p) in
  let pi = Omission_consensus.make ~n ~f ~propose in
  let compiled = Compiler.compile ~n pi in
  let rounds = 60 in

  (* One process is send-omission faulty on and off through the run. *)
  let faults =
    Faults.of_events ~n
      [
        Faults.Mute { pid = 3; first = 5; last = 9 };
        Faults.Mute { pid = 3; first = 30; last = 34 };
      ]
  in

  (* The systemic failure strikes mid-execution, at round 25. *)
  let corrupt_at =
    [
      ( 25,
        fun p (st : _ Compiler.state) ->
          ignore p;
          {
            st with
            Compiler.c = 400 + Rng.int rng 100;
            suspects = Pidset.of_pred n (fun _ -> Rng.bool rng);
          } );
    ]
  in

  let trace = Runner.run ~corrupt_at ~faults ~rounds compiled in

  Format.printf "=== decision stream (round: pid:decision ...) ===@.";
  List.iter
    (fun (round, cs) ->
      let show c =
        Format.asprintf "%a:%s" Pid.pp c.Repeated.pid
          (match c.Repeated.decision with Some v -> string_of_int v | None -> "-")
      in
      Format.printf "  %2d: %s@." round (String.concat "  " (List.map show cs)))
    (Repeated.decisions_by_round trace ~faulty:(Faults.faulty faults));

  Format.printf "@.=== coterie timeline ===@.";
  let analysis = Causality.analyze trace in
  List.iter
    (fun (r, entered) ->
      Format.printf "  round %2d: %a entered the coterie@." r Pidset.pp entered)
    (Causality.changes analysis);
  List.iter
    (fun (x, y) -> Format.printf "  stable window: prefix rounds %d..%d@." x y)
    (Causality.stable_intervals analysis);

  let valid d = List.exists (fun p -> propose p = d) (Pid.all n) in
  let spec = Repeated.round_and_sigma ~final_round:pi.Canonical.final_round ~valid () in
  (* A mid-run systemic failure makes the whole trace a concatenation of
     two histories; Definition 2.4 applies to each. Check the suffix that
     starts at the corruption. *)
  let suffix = Trace.sub trace ~first:25 ~last:rounds in
  let holds_suffix =
    Solve.ftss_solves spec ~stabilization:(Compiler.stabilization_bound pi) suffix
  in
  let measured = Solve.measured_stabilization spec suffix in
  Format.printf "@.suffix after mid-run corruption ftss-satisfies Σ⁺: %b@." holds_suffix;
  Format.printf "measured stabilization in the suffix: %d (bound %d)@." measured
    (Compiler.stabilization_bound pi);
  if not holds_suffix then exit 1
