(* Executable reproductions of the impossibility theorems (Thms 1 and 2).

   Run with: dune exec examples/impossibility_demo.exe *)

open Ftss_core

let () =
  Format.printf "=== Theorem 1: no finite stabilization time under the tentative definition ===@.";
  let r1 = Impossibility.Theorem1.run ~isolation:8 ~c_p:42 ~c_q:7 ~suffix:10 in
  Format.printf "  isolation: %d rounds; round-variable gap when it ends: %d@."
    r1.Impossibility.Theorem1.isolation r1.Impossibility.Theorem1.gap_at_suffix;
  Format.printf "  suffix identical to a fresh fault-free run: %b@."
    r1.Impossibility.Theorem1.suffix_matches_fresh_run;
  (match r1.Impossibility.Theorem1.rate_violation_round with
  | Some r ->
    Format.printf "  reconciling protocol violates the rate condition at suffix round %d@." r
  | None -> Format.printf "  (no rate violation observed — unexpected)@.");
  Format.printf "  rate-obeying protocol never reaches agreement: %b@."
    r1.Impossibility.Theorem1.rate_obeying_never_agrees;
  Format.printf "  => Theorem 1 confirmed: %b@.@."
    (Impossibility.Theorem1.confirms_theorem r1);

  Format.printf "=== Theorem 2: uniform protocols cannot ftss-solve anything ===@.";
  let r2 = Impossibility.Theorem2.run ~silence_threshold:4 ~c_p:13 ~c_q:2 ~rounds:12 in
  Format.printf "  local views identical whichever process is the faulty one: %b@."
    r2.Impossibility.Theorem2.views_identical;
  Format.printf "  'halt-before-harm' strawman halts a correct process: %b@."
    r2.Impossibility.Theorem2.self_checking_halts_correct_process;
  Format.printf "  never-halting strawman violates uniformity: %b@."
    r2.Impossibility.Theorem2.never_halting_violates_uniformity;
  Format.printf "  => Theorem 2 confirmed: %b@."
    (Impossibility.Theorem2.confirms_theorem r2);

  if
    not
      (Impossibility.Theorem1.confirms_theorem r1
      && Impossibility.Theorem2.confirms_theorem r2)
  then exit 1
